package mc

import (
	"testing"

	"mithril/internal/dram"
	"mithril/internal/timing"
)

func testParams() timing.Params {
	p := timing.DDR5()
	p.Rows = 4096
	p.RefreshGroups = 512
	return p
}

// runTicks drives the controller for n ticks of one tCK.
func runTicks(c *Controller, from timing.PicoSeconds, n int) timing.PicoSeconds {
	p := c.p
	now := from
	for i := 0; i < n; i++ {
		c.Tick(now)
		now += p.TCK
	}
	return now
}

func TestControllerServesRequest(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	var completions int
	var doneAt timing.PicoSeconds
	c := NewController(dev, Config{Scheduler: FRFCFS}, func(r *Request, at timing.PicoSeconds) {
		completions++
		doneAt = at
	})
	req := &Request{ID: 1, CoreID: 0, Addr: 0x10040}
	if !c.Enqueue(req) {
		t.Fatal("enqueue failed")
	}
	runTicks(c, 0, 200)
	if completions != 1 {
		t.Fatalf("completions = %d, want 1", completions)
	}
	if doneAt <= 0 {
		t.Fatal("completion time should be positive")
	}
	if c.Stats().Served != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestQueueBackpressure(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	c := NewController(dev, Config{QueueDepth: 2}, nil)
	a := c.Enqueue(&Request{Addr: 0})
	b := c.Enqueue(&Request{Addr: 64 * 2}) // same channel (stride 2 lines)
	full := c.Enqueue(&Request{Addr: 64 * 4})
	if !a || !b || full {
		t.Fatalf("expected 2 accepts then reject, got %v %v %v", a, b, full)
	}
	if c.Stats().Rejected != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	var order []uint64
	c := NewController(dev, Config{Scheduler: FRFCFS, Policy: OpenPage}, func(r *Request, at timing.PicoSeconds) {
		order = append(order, r.ID)
	})
	m := c.Mapper()
	rowA := m.Compose(Location{Row: 10})
	rowB := m.Compose(Location{Row: 20})
	// Open row 10 first, then queue a conflicting request before a hit.
	c.Enqueue(&Request{ID: 1, Addr: rowA})
	runTicks(c, 0, 200)
	c.Enqueue(&Request{ID: 2, Addr: rowB})                               // conflict (older)
	c.Enqueue(&Request{ID: 3, Addr: rowA + uint64(LineSize*p.Channels)}) // hit on open row 10
	runTicks(c, 200*p.TCK, 400)
	if len(order) != 3 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("serve order = %v, want hit (3) before conflict (2)", order)
	}
}

func TestFCFSServesInArrivalOrder(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	var order []uint64
	c := NewController(dev, Config{Scheduler: FCFS}, func(r *Request, at timing.PicoSeconds) {
		order = append(order, r.ID)
	})
	m := c.Mapper()
	c.Enqueue(&Request{ID: 1, Addr: m.Compose(Location{Row: 10})})
	c.Enqueue(&Request{ID: 2, Addr: m.Compose(Location{Row: 20})})
	c.Enqueue(&Request{ID: 3, Addr: m.Compose(Location{Row: 10, Column: 1})})
	runTicks(c, 0, 600)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("FCFS order = %v", order)
	}
}

func TestBLISSBlacklistsStreakyCore(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	var order []uint64
	c := NewController(dev, Config{Scheduler: BLISS, Policy: OpenPage}, func(r *Request, at timing.PicoSeconds) {
		order = append(order, r.ID)
	})
	m := c.Mapper()
	// Core 0 floods row hits; core 1 queues one conflicting request.
	// After four core-0 serves BLISS must let core 1 through even though
	// core 0 still offers row hits.
	for i := 0; i < 6; i++ {
		c.Enqueue(&Request{ID: uint64(10 + i), CoreID: 0, Addr: m.Compose(Location{Row: 10, Column: i})})
	}
	c.Enqueue(&Request{ID: 99, CoreID: 1, Addr: m.Compose(Location{Row: 20})})
	runTicks(c, 0, 1500)
	if len(order) != 7 {
		t.Fatalf("served %d, want 7", len(order))
	}
	pos := -1
	for i, id := range order {
		if id == 99 {
			pos = i
		}
	}
	if pos < 0 || pos > 4 {
		t.Fatalf("core 1's request served at position %d (order %v), BLISS should unblock it after the streak", pos, order)
	}
}

// TestBlissStateSparseCoreIDs covers the dense blacklist directly: it must
// grow on demand for arbitrary core IDs, ignore unowned serves (core -1),
// and release cores after the clearing interval.
func TestBlissStateSparseCoreIDs(t *testing.T) {
	b := newBlissState()
	now := timing.PicoSeconds(0)
	if b.blacklisted(7, now) {
		t.Fatal("fresh state must not blacklist")
	}
	for i := 0; i < blissStreakLimit; i++ {
		b.recordServe(7, now)
	}
	if !b.blacklisted(7, now) {
		t.Fatal("core 7 should be blacklisted after a full streak")
	}
	if b.blacklisted(3, now) || b.blacklisted(100, now) {
		t.Fatal("other cores must stay whitelisted")
	}
	if b.blacklisted(7, now+blissClearInterval) {
		t.Fatal("blacklist must clear after the interval")
	}
	// Unowned serves (raw activations) must neither panic nor blacklist.
	for i := 0; i < 2*blissStreakLimit; i++ {
		b.recordServe(-1, now)
	}
	if b.blacklisted(-1, now) {
		t.Fatal("core -1 must never be blacklisted")
	}
}

func TestAutoRefreshIssuedPeriodically(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	c := NewController(dev, Config{}, nil)
	// Run for 4 tREFI: expect ≈4 REFs per rank (2 channels × 1 rank).
	ticks := int(4 * p.TREFI / p.TCK)
	runTicks(c, 0, ticks)
	got := c.Stats().REFIssued
	if got < 6 || got > 10 {
		t.Fatalf("REFIssued = %d over 4 tREFI × 2 ranks, want ≈ 8", got)
	}
}

// rfmProbe is a minimal RFM-compatible scheme recording OnRFM calls.
type rfmProbe struct {
	rfmTH   int
	rfmSeen int
	skip    bool
	skips   int
}

func (r *rfmProbe) Name() string        { return "probe" }
func (r *rfmProbe) RFMCompatible() bool { return true }
func (r *rfmProbe) RFMTH() int          { return r.rfmTH }
func (r *rfmProbe) OnActivate(int, uint32, int, timing.PicoSeconds) []uint32 {
	return nil
}
func (r *rfmProbe) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds { return 0 }
func (r *rfmProbe) OnRFM(bank int, now timing.PicoSeconds) []uint32 {
	r.rfmSeen++
	return []uint32{1, 3}
}
func (r *rfmProbe) SkipRFM(int) bool {
	if r.skip {
		r.skips++
		return true
	}
	return false
}
func (r *rfmProbe) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }

func TestRFMIssuedEveryRFMTHActivations(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	probe := &rfmProbe{rfmTH: 4}
	c := NewController(dev, Config{Scheduler: FRFCFS, Policy: ClosedPage, Scheme: probe}, nil)
	m := c.Mapper()
	// 12 activations to one bank (closed page → every access activates).
	now := timing.PicoSeconds(0)
	for i := 0; i < 12; i++ {
		c.Enqueue(&Request{ID: uint64(i), Addr: m.Compose(Location{Row: i * 2})})
		now = runTicks(c, now, 400)
	}
	if probe.rfmSeen != 3 {
		t.Fatalf("OnRFM called %d times for 12 ACTs at RFMTH=4, want 3", probe.rfmSeen)
	}
	st := c.Stats()
	if st.RFMIssued != 3 {
		t.Fatalf("stats RFMIssued = %d, want 3", st.RFMIssued)
	}
	if dev.Bank(0).Stats().PreventiveRows != 6 {
		t.Fatalf("victim rows = %d, want 6", dev.Bank(0).Stats().PreventiveRows)
	}
}

func TestMithrilPlusSkipAvoidsRFM(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	probe := &rfmProbe{rfmTH: 4, skip: true}
	c := NewController(dev, Config{Scheduler: FRFCFS, Policy: ClosedPage, Scheme: probe}, nil)
	m := c.Mapper()
	now := timing.PicoSeconds(0)
	for i := 0; i < 8; i++ {
		c.Enqueue(&Request{ID: uint64(i), Addr: m.Compose(Location{Row: i * 2})})
		now = runTicks(c, now, 400)
	}
	st := c.Stats()
	if probe.rfmSeen != 0 || st.RFMIssued != 0 {
		t.Fatalf("skip flag should suppress RFM: seen=%d issued=%d", probe.rfmSeen, st.RFMIssued)
	}
	if st.RFMSkipped != 2 || st.MRRReads < 2 {
		t.Fatalf("skips=%d MRR=%d, want 2 skips", st.RFMSkipped, st.MRRReads)
	}
	if c.RAACount(0) >= 4 {
		t.Fatal("RAA should reset on skip")
	}
}

// arrProbe triggers an ARR for every activation of row 100.
type arrProbe struct{ arrs int }

func (a *arrProbe) Name() string        { return "arr-probe" }
func (a *arrProbe) RFMCompatible() bool { return false }
func (a *arrProbe) RFMTH() int          { return 0 }
func (a *arrProbe) OnActivate(bank int, row uint32, core int, now timing.PicoSeconds) []uint32 {
	if row == 100 {
		a.arrs++
		return []uint32{99, 101}
	}
	return nil
}
func (a *arrProbe) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds { return 0 }
func (a *arrProbe) OnRFM(int, timing.PicoSeconds) []uint32                              { return nil }
func (a *arrProbe) SkipRFM(int) bool                                                    { return false }
func (a *arrProbe) NextDeadline(timing.PicoSeconds) timing.PicoSeconds                  { return timing.Never }

func TestARRInjection(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	probe := &arrProbe{}
	c := NewController(dev, Config{Scheduler: FRFCFS, Policy: ClosedPage, Scheme: probe}, nil)
	m := c.Mapper()
	c.Enqueue(&Request{ID: 1, Addr: m.Compose(Location{Row: 100})})
	runTicks(c, 0, 800)
	st := c.Stats()
	if probe.arrs != 1 || st.ARRWindows != 1 || st.ARRVictims != 2 {
		t.Fatalf("ARR accounting: probe=%d windows=%d victims=%d", probe.arrs, st.ARRWindows, st.ARRVictims)
	}
	if dev.Checker(0).Disturbance(99) != 0 {
		t.Fatal("ARR should refresh victims")
	}
}

// throttleProbe releases ACTs on row 7 only after a fixed absolute time
// (real throttlers like BlockHammer return absolute release times).
type throttleProbe struct{ delay timing.PicoSeconds }

func (tp *throttleProbe) Name() string        { return "throttle-probe" }
func (tp *throttleProbe) RFMCompatible() bool { return false }
func (tp *throttleProbe) RFMTH() int          { return 0 }
func (tp *throttleProbe) OnActivate(int, uint32, int, timing.PicoSeconds) []uint32 {
	return nil
}
func (tp *throttleProbe) PreACTDelay(bank int, row uint32, core int, now timing.PicoSeconds) timing.PicoSeconds {
	if row == 7 {
		return tp.delay
	}
	return 0
}
func (tp *throttleProbe) OnRFM(int, timing.PicoSeconds) []uint32 { return nil }
func (tp *throttleProbe) SkipRFM(int) bool                       { return false }
func (tp *throttleProbe) NextDeadline(timing.PicoSeconds) timing.PicoSeconds {
	return timing.Never
}

func TestThrottlingDelaysACT(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	probe := &throttleProbe{delay: 100 * timing.Microsecond}
	var fastAt, slowAt timing.PicoSeconds
	c := NewController(dev, Config{Scheduler: FRFCFS, Policy: ClosedPage, Scheme: probe},
		func(r *Request, at timing.PicoSeconds) {
			if r.Loc.Row == 7 {
				slowAt = at
			} else {
				fastAt = at
			}
		})
	m := c.Mapper()
	c.Enqueue(&Request{ID: 1, Addr: m.Compose(Location{Row: 7})})          // throttled
	c.Enqueue(&Request{ID: 2, Addr: m.Compose(Location{Row: 9, Bank: 1})}) // free
	ticks := int(200 * timing.Microsecond / p.TCK)
	runTicks(c, 0, ticks)
	if fastAt == 0 || slowAt == 0 {
		t.Fatalf("both requests should complete (fast=%v slow=%v)", fastAt, slowAt)
	}
	if slowAt < 100*timing.Microsecond {
		t.Fatalf("throttled request finished at %v, want ≥ 100us", slowAt)
	}
	if c.Stats().ThrottleHit == 0 {
		t.Fatal("throttle hits not counted")
	}
}

func TestMinimalistOpenCapsHitStreak(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	c := NewController(dev, Config{Scheduler: FRFCFS, Policy: MinimalistOpen}, nil)
	m := c.Mapper()
	now := timing.PicoSeconds(0)
	// 12 accesses to the same row: open-page would activate once;
	// minimalist-open must re-activate every 4 accesses → 3 ACTs.
	for i := 0; i < 12; i++ {
		c.Enqueue(&Request{ID: uint64(i), Addr: m.Compose(Location{Row: 10, Column: i % 64})})
		now = runTicks(c, now, 300)
	}
	acts := dev.Bank(0).Stats().ACTs
	if acts != 3 {
		t.Fatalf("ACTs = %d, want 3 under minimalist-open", acts)
	}
}

func TestRawActivateCountsTowardRAA(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	probe := &rfmProbe{rfmTH: 8}
	c := NewController(dev, Config{Scheme: probe}, nil)
	for i := 0; i < 8; i++ {
		c.RawActivate(0, i*2, timing.PicoSeconds(i)*p.TRC)
	}
	if !c.RFMDue(0) {
		t.Fatal("RFM should be due after RFMTH raw activations")
	}
	c.Tick(timing.PicoSeconds(10) * p.TRC)
	if c.RFMDue(0) || probe.rfmSeen != 1 {
		t.Fatalf("RFM not drained: due=%v seen=%d", c.RFMDue(0), probe.rfmSeen)
	}
}

func TestPendingWork(t *testing.T) {
	p := testParams()
	dev := dram.NewDevice(p, 1<<30, nil)
	c := NewController(dev, Config{}, nil)
	if c.PendingWork() {
		t.Fatal("fresh controller should be idle")
	}
	c.Enqueue(&Request{Addr: 0})
	if !c.PendingWork() {
		t.Fatal("queued request should report pending work")
	}
}
