package lint

// All returns the full analyzer suite in its canonical order — what
// cmd/mithrilvet runs and the self-check test asserts clean.
func All() []*Analyzer {
	return []*Analyzer{HotpathAlloc, DetRange, PureSim, RegisterInit}
}
