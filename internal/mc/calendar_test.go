package mc

import (
	"testing"

	"mithril/internal/dram"
	"mithril/internal/timing"
)

// TestNextDeadlineMatchesDeprecatedSurface dual-drives two identically
// configured controllers — one through the calendar surface (TickDue /
// NextDeadline), one through the deprecated tick surface (Tick / NextWork /
// NextRefresh) — with the same pseudo-random request stream, and asserts
// at every iteration that (a) both surfaces agree on the next interesting
// instant under the loop's max(now+tick, next) jump rule and (b) the
// controllers' observable state stays identical. This pins the
// incremental deadline caches against the rescanning implementation they
// replaced.
func TestNextDeadlineMatchesDeprecatedSurface(t *testing.T) {
	p := testParams()
	build := func() (*Controller, *int) {
		completions := 0
		dev := dram.NewDevice(p, 1<<30, nil)
		c := NewController(dev, Config{Scheduler: BLISS, Policy: MinimalistOpen},
			func(*Request, timing.PicoSeconds) { completions++ })
		return c, &completions
	}
	cal, calDone := build()
	tick, tickDone := build()

	space := cal.Mapper().AddressSpace()
	now := timing.PicoSeconds(0)
	state := uint64(99)
	enqueued := 0
	for i := 0; i < 4000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		if state%3 == 0 {
			id := uint64(i + 1)
			core := int(state>>32) % 4
			addr := (state >> 8) % space
			okA := cal.Enqueue(&Request{ID: id, CoreID: core, Addr: addr})
			okB := tick.Enqueue(&Request{ID: id, CoreID: core, Addr: addr})
			if okA != okB {
				t.Fatalf("iter %d: enqueue acceptance diverged (%v vs %v)", i, okA, okB)
			}
			if okA {
				enqueued++
			}
		}

		cal.TickDue(now)
		tick.Tick(now)
		if a, b := cal.Stats(), tick.Stats(); a != b {
			t.Fatalf("iter %d at %v: stats diverged:\ncalendar: %+v\ntick:     %+v", i, now, a, b)
		}
		for ch := 0; ch < p.Channels; ch++ {
			if a, b := cal.QueueLen(ch), tick.QueueLen(ch); a != b {
				t.Fatalf("iter %d at %v: channel %d queue length %d vs %d", i, now, ch, a, b)
			}
		}

		// The loops' shared jump rule: max(now+tick, next). Any clamping
		// difference below now+tick must be absorbed by the max.
		nextA := cal.NextDeadline(now)
		nextB := tick.NextWork(now + p.TCK)
		if r := tick.NextRefresh(); r < nextB {
			nextB = r
		}
		stepA, stepB := now+p.TCK, now+p.TCK
		if nextA > stepA {
			stepA = nextA
		}
		if nextB > stepB {
			stepB = nextB
		}
		if stepA != stepB {
			t.Fatalf("iter %d at %v: calendar would jump to %v, tick loop to %v (NextDeadline=%v NextWork/Refresh=%v)",
				i, now, stepA, stepB, nextA, nextB)
		}
		now = stepA
	}
	if enqueued == 0 || *calDone == 0 {
		t.Fatalf("test exercised nothing: %d enqueued, %d completed", enqueued, *calDone)
	}
	if *calDone != *tickDone {
		t.Fatalf("completions diverged: calendar %d, tick %d", *calDone, *tickDone)
	}
}
