// This file pins the PRE-CALENDAR simulator surface. PR 8 moved the main
// loop onto the next-event calendar (Controller.NextDeadline/TickDue,
// Core.NextWake, sim.Clock) and demoted the tick-driven entry points —
// Controller.Tick/NextWork/NextRefresh, Core.NextReady, and the ctx-less
// sim.Run/RunComparison — to deprecated shims. The typed assignments and
// call shapes below freeze those shims' exact signatures so a later
// refactor cannot silently change or drop them while the differential-
// equivalence suite (and any downstream consumer) still depends on them.
//
// DO NOT modernize these calls to the calendar API — this file's whole
// value is that it keeps exercising the old one. It only needs to compile;
// ExercisePreCalendar is never called in anger.
//
//lint:file-ignore SA1019 this file intentionally consumes the deprecated pre-calendar API

package apicompat

import (
	"fmt"

	"mithril/internal/cpu"
	"mithril/internal/dram"
	"mithril/internal/mc"
	"mithril/internal/sim"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// fixedSource is the minimal cpu.Source a core needs.
type fixedSource struct{}

func (fixedSource) Next() cpu.Op { return cpu.Op{Gap: 3, Addr: 0x40} }

// ExercisePreCalendar touches every deprecated tick-loop entry point with
// the exact call shapes the pre-calendar loop used.
func ExercisePreCalendar() error {
	p := timing.DDR5()
	dev := dram.NewDevice(p, 6250, nil)
	ctl := mc.NewController(dev, mc.Config{Scheduler: mc.BLISS}, nil)

	// The tick-driven controller trio: advance one instant, ask for the
	// next matured work item (with the caller-supplied fallback bound the
	// old loop passed), and the next refresh slot.
	var (
		tick        func(timing.PicoSeconds)                    = ctl.Tick
		nextWork    func(timing.PicoSeconds) timing.PicoSeconds = ctl.NextWork
		nextRefresh func() timing.PicoSeconds                   = ctl.NextRefresh
	)
	tick(0)
	if w, r := nextWork(p.TCK), nextRefresh(); w < 0 || r < 0 {
		return fmt.Errorf("pre-calendar controller surface: NextWork=%v NextRefresh=%v", w, r)
	}

	// The core's self-paced readiness probe (no now argument, unclamped).
	core := cpu.NewCore(0, cpu.DefaultCoreConfig(), fixedSource{}, cpu.NewLLC(1<<20, 16), 1,
		func(*mc.Request) bool { return true })
	var nextReady func() timing.PicoSeconds = core.NextReady
	_ = nextReady()

	// The ctx-less run shims, with the call shapes the pre-calendar README
	// documented.
	cfg := sim.Config{
		Params:       p,
		FlipTH:       6250,
		Scheduler:    mc.BLISS,
		Policy:       mc.MinimalistOpen,
		Workload:     trace.MixHigh(1, 1).Fresh(),
		InstrPerCore: 100,
	}
	if _, err := sim.Run(cfg); err != nil {
		return err
	}
	if _, err := sim.RunComparison(cfg, trace.MixHigh(1, 1), mc.NoProtection{}); err != nil {
		return err
	}
	return nil
}
