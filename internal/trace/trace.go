// Package trace defines the instruction-stream abstraction consumed by the
// core model and the synthetic workload generators that substitute for the
// paper's SPEC CPU2017 / SPLASH-2 / GAP traces (substitution documented in
// DESIGN.md §3). Generators are deterministic given their seed, so every
// experiment is reproducible.
package trace

import (
	"fmt"

	"mithril/internal/streaming"
)

// Access is one memory operation of a core's instruction stream.
type Access struct {
	// Gap is the number of non-memory instructions executed before this
	// access (controls memory intensity).
	Gap int
	// Addr is the physical byte address (cache-line aligned by the core).
	Addr uint64
	// Write marks stores.
	Write bool
	// Serialize forces the core to drain outstanding misses first
	// (models dependent pointer-chasing loads).
	Serialize bool
	// Uncached bypasses the LLC (models CLFLUSH-based RowHammer loops).
	Uncached bool
}

// Generator produces an endless access stream.
type Generator interface {
	Name() string
	Next() Access
}

// Stream sweeps a footprint sequentially cache line by cache line — the
// archetypal streaming kernel (and the "large object sweep" of Figure 8 when
// the footprint spans many DRAM rows).
type Stream struct {
	name       string
	base       uint64
	footprint  uint64
	gap        int
	writeEvery int // every n-th access is a store (0 = never)
	pos        uint64
	count      int
}

// NewStream builds a sequential sweeper over [base, base+footprint).
func NewStream(name string, base, footprint uint64, gap, writeEvery int) *Stream {
	if footprint < 64 {
		panic(fmt.Sprintf("trace: footprint %d too small", footprint))
	}
	return &Stream{name: name, base: base, footprint: footprint, gap: gap, writeEvery: writeEvery}
}

// Name implements Generator.
func (s *Stream) Name() string { return s.name }

// Next implements Generator.
func (s *Stream) Next() Access {
	addr := s.base + s.pos
	s.pos = (s.pos + 64) % s.footprint
	s.count++
	w := s.writeEvery > 0 && s.count%s.writeEvery == 0
	return Access{Gap: s.gap, Addr: addr, Write: w}
}

// Random touches uniformly random lines of its footprint — a low-locality,
// high-MPKI pattern (mcf/omnetpp-like).
type Random struct {
	name      string
	base      uint64
	footprint uint64
	gap       int
	writeFrac float64
	rng       *streaming.Rand
}

// NewRandom builds a uniform random generator.
func NewRandom(name string, base, footprint uint64, gap int, writeFrac float64, seed uint64) *Random {
	if footprint < 64 {
		panic(fmt.Sprintf("trace: footprint %d too small", footprint))
	}
	return &Random{name: name, base: base, footprint: footprint, gap: gap, writeFrac: writeFrac, rng: streaming.NewRand(seed)}
}

// Name implements Generator.
func (r *Random) Name() string { return r.name }

// Next implements Generator.
func (r *Random) Next() Access {
	line := r.rng.Uint64() % (r.footprint / 64)
	return Access{
		Gap:   r.gap,
		Addr:  r.base + line*64,
		Write: r.rng.Float64() < r.writeFrac,
	}
}

// PointerChase issues dependent random loads (each must complete before the
// next can issue), modelling linked-data-structure traversal.
type PointerChase struct {
	inner *Random
}

// NewPointerChase builds a serialized random-walk generator.
func NewPointerChase(name string, base, footprint uint64, gap int, seed uint64) *PointerChase {
	return &PointerChase{inner: NewRandom(name, base, footprint, gap, 0, seed)}
}

// Name implements Generator.
func (p *PointerChase) Name() string { return p.inner.Name() }

// Next implements Generator.
func (p *PointerChase) Next() Access {
	a := p.inner.Next()
	a.Serialize = true
	return a
}

// Strided walks its footprint with a fixed line stride — FFT/RADIX-style
// butterfly and bucket patterns with moderate row locality.
type Strided struct {
	name        string
	base        uint64
	footprint   uint64
	strideLines uint64
	gap         int
	pos         uint64
}

// NewStrided builds a strided generator (stride expressed in cache lines).
func NewStrided(name string, base, footprint uint64, strideLines uint64, gap int) *Strided {
	if strideLines == 0 {
		strideLines = 1
	}
	return &Strided{name: name, base: base, footprint: footprint, strideLines: strideLines, gap: gap}
}

// Name implements Generator.
func (s *Strided) Name() string { return s.name }

// Next implements Generator.
func (s *Strided) Next() Access {
	addr := s.base + s.pos
	s.pos = (s.pos + s.strideLines*64) % s.footprint
	return Access{Gap: s.gap, Addr: addr}
}

// GatherScatter interleaves a sequential sweep (edge list) with random
// lookups (node table) — a PageRank-like pattern.
type GatherScatter struct {
	name   string
	stream *Stream
	random *Random
	flip   bool
}

// NewGatherScatter builds the composite generator; the random side reuses
// the same footprint offset by half.
func NewGatherScatter(name string, base, footprint uint64, gap int, seed uint64) *GatherScatter {
	half := footprint / 2
	return &GatherScatter{
		name:   name,
		stream: NewStream(name+"-edges", base, half, gap, 0),
		random: NewRandom(name+"-nodes", base+half, half, gap, 0.3, seed),
	}
}

// Name implements Generator.
func (g *GatherScatter) Name() string { return g.name }

// Next implements Generator.
func (g *GatherScatter) Next() Access {
	g.flip = !g.flip
	if g.flip {
		return g.stream.Next()
	}
	return g.random.Next()
}

// ComputeBound interleaves long compute phases with sparse accesses —
// the cache-friendly end of mix-blend.
type ComputeBound struct {
	inner *Stream
}

// NewComputeBound builds a low-MPKI generator over a small (LLC-resident)
// footprint.
func NewComputeBound(name string, base uint64, seed uint64) *ComputeBound {
	return &ComputeBound{inner: NewStream(name, base, 1<<20, 400, 7)}
}

// Name implements Generator.
func (c *ComputeBound) Name() string { return c.inner.Name() }

// Next implements Generator.
func (c *ComputeBound) Next() Access { return c.inner.Next() }
