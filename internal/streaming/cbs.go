package streaming

import "fmt"

// Summary is the interface shared by the two Counter-based Summary
// implementations (scan-based CbS and bucketed SpaceSaving). It exposes
// exactly the operations the Mithril control logic needs: on-ACT update,
// greedy selection, RFM decrement, and the Min/Max/Spread observations used
// by the adaptive-refresh policy.
type Summary interface {
	// Observe records one occurrence of key (one ACT of a row address).
	Observe(key uint32)
	// Estimate reports the estimated count for key: the written counter
	// value when key is on-table, Min() otherwise.
	Estimate(key uint32) uint64
	// Min reports the minimum counter value in the table (0 when empty).
	Min() uint64
	// Max reports an entry with the maximum counter value. ok is false when
	// the table is empty.
	Max() (key uint32, count uint64, ok bool)
	// DecrementMaxToMin implements the Mithril RFM step: the entry at
	// MaxPtr is selected, its counter is lowered to Min(), and its key is
	// returned for preventive refresh. ok is false when the table is empty.
	DecrementMaxToMin() (key uint32, ok bool)
	// Spread is Max − Min, the adaptive-refresh attack indicator.
	Spread() uint64
	// Len is the number of occupied entries; Cap the table capacity.
	Len() int
	Cap() int
	// Reset clears the table (Graphene-style periodic reset; Mithril does
	// not need it thanks to wrapping counters but the baseline does).
	Reset()
}

// CbS is the scan-based reference implementation of the Counter-based
// Summary algorithm (Misra–Gries / Space-Saving variant used by Graphene and
// Mithril). Updates are O(1) via a key index; Min/Max queries scan the table,
// which is acceptable for the table sizes the paper studies (tens to a few
// thousand entries) and makes the implementation obviously correct — the
// O(1) SpaceSaving structure is property-tested against this one.
type CbS struct {
	keys   []uint32
	counts []uint64
	used   []bool
	index  map[uint32]int // key -> slot
}

var _ Summary = (*CbS)(nil)

// NewCbS returns a Counter-based Summary with capacity entries. It panics if
// capacity is not positive: a zero-entry tracker cannot provide any bound.
func NewCbS(capacity int) *CbS {
	if capacity <= 0 {
		panic(fmt.Sprintf("streaming: CbS capacity must be positive, got %d", capacity))
	}
	return &CbS{
		keys:   make([]uint32, capacity),
		counts: make([]uint64, capacity),
		used:   make([]bool, capacity),
		index:  make(map[uint32]int, capacity),
	}
}

// Observe implements the CbS update rule (Figure 3 of the paper): increment
// on hit; otherwise replace the minimum entry's address with the new key and
// increment its counter.
func (c *CbS) Observe(key uint32) { c.ObserveEvict(key) }

// ObserveEvict is Observe plus eviction reporting: when recording key
// displaces the minimum entry, the displaced key is returned with ok = true
// (mirrors SpaceSaving.ObserveEvict for the property tests).
func (c *CbS) ObserveEvict(key uint32) (evicted uint32, ok bool) {
	if slot, hit := c.index[key]; hit {
		c.counts[slot]++
		return 0, false
	}
	// Prefer an unused slot (counter value 0, the true minimum).
	if len(c.index) < len(c.keys) {
		for slot := range c.used {
			if !c.used[slot] {
				c.used[slot] = true
				c.keys[slot] = key
				c.counts[slot] = 1
				c.index[key] = slot
				return 0, false
			}
		}
	}
	slot := c.minSlot()
	old := c.keys[slot]
	delete(c.index, old)
	c.keys[slot] = key
	c.counts[slot]++
	c.index[key] = slot
	return old, true
}

func (c *CbS) minSlot() int {
	best, bestCount := -1, uint64(0)
	for slot, u := range c.used {
		if !u {
			continue
		}
		if best == -1 || c.counts[slot] < bestCount {
			best, bestCount = slot, c.counts[slot]
		}
	}
	return best
}

func (c *CbS) maxSlot() int {
	best, bestCount := -1, uint64(0)
	for slot, u := range c.used {
		if !u {
			continue
		}
		if best == -1 || c.counts[slot] > bestCount {
			best, bestCount = slot, c.counts[slot]
		}
	}
	return best
}

// Estimate reports the written counter for on-table keys and Min otherwise.
func (c *CbS) Estimate(key uint32) uint64 {
	if slot, ok := c.index[key]; ok {
		return c.counts[slot]
	}
	return c.Min()
}

// Contains reports whether key currently occupies a table entry.
func (c *CbS) Contains(key uint32) bool {
	_, ok := c.index[key]
	return ok
}

// Min reports the minimum counter value; 0 while any entry is unused.
func (c *CbS) Min() uint64 {
	if len(c.index) < len(c.keys) {
		return 0
	}
	return c.counts[c.minSlot()]
}

// Max reports an entry holding the maximum counter value.
func (c *CbS) Max() (uint32, uint64, bool) {
	slot := c.maxSlot()
	if slot < 0 {
		return 0, 0, false
	}
	return c.keys[slot], c.counts[slot], true
}

// DecrementMaxToMin lowers the maximum entry's counter to the table minimum
// and returns its key — the Mithril greedy RFM step.
func (c *CbS) DecrementMaxToMin() (uint32, bool) {
	slot := c.maxSlot()
	if slot < 0 {
		return 0, false
	}
	c.counts[slot] = c.Min()
	return c.keys[slot], true
}

// Spread is Max − Min; 0 for an empty table.
func (c *CbS) Spread() uint64 {
	_, maxCount, ok := c.Max()
	if !ok {
		return 0
	}
	return maxCount - c.Min()
}

// Len reports the number of occupied entries.
func (c *CbS) Len() int { return len(c.index) }

// Cap reports the table capacity Nentry.
func (c *CbS) Cap() int { return len(c.keys) }

// Reset clears all entries and counters.
func (c *CbS) Reset() {
	for slot := range c.used {
		c.used[slot] = false
		c.counts[slot] = 0
		c.keys[slot] = 0
	}
	c.index = make(map[uint32]int, len(c.keys))
}

// Entries returns a snapshot of (key, count) pairs in slot order, used by
// diagnostics and tests.
func (c *CbS) Entries() []Entry {
	out := make([]Entry, 0, len(c.index))
	for slot, u := range c.used {
		if u {
			out = append(out, Entry{Key: c.keys[slot], Count: c.counts[slot]})
		}
	}
	return out
}

// Entry is one (address, estimated count) pair of a summary snapshot.
type Entry struct {
	Key   uint32
	Count uint64
}
