package attack

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"mithril/internal/trace"
)

// The sorted order of Names is a documented guarantee; the shipped
// patterns must all be registered (parameterized ones under their display
// spelling).
func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() = %v, want sorted", names)
	}
	want := []string{"blockhammer-adversarial", "decoy:<n>", "double", "multi:<n>", "rowlist", "single"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pattern %q not registered (have %v)", w, names)
		}
	}
	for _, info := range Patterns() {
		if info.Desc == "" {
			t.Errorf("pattern %q has no description", info.Name)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	build := func(string, Params) (trace.Generator, error) { return nil, nil }
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty name", func() { Register("", Pattern{Build: build}) }},
		{"name with separator", func() { Register("a:b", Pattern{Build: build}) }},
		{"nil build", func() { Register("t-nil", Pattern{}) }},
		{"arg hint without check", func() { Register("t-hint", Pattern{ArgHint: "<n>", Build: build}) }},
		{"check without arg hint", func() {
			Register("t-chk", Pattern{Check: func(a string) (string, error) { return a, nil }, Build: build})
		}},
		{"duplicate", func() { Register("single", Pattern{Build: build}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.fn()
		})
	}
}

func TestValidate(t *testing.T) {
	for _, ok := range []string{"single", "double", "multi:32", "multi:1", "rowlist", "decoy", "decoy:8", "blockhammer-adversarial"} {
		if err := Validate(ok); err != nil {
			t.Errorf("Validate(%q) = %v", ok, err)
		}
	}
	cases := []struct {
		name, want string
	}{
		{"rowpress", "unknown attack"},
		{"multi", "victim count"},
		{"multi:x", "victim count"},
		{"multi:0", "victim count"},
		{"multi:-3", "victim count"},
		{"single:5", "takes no argument"},
		{"decoy:zero", "decoy count"},
	}
	for _, c := range cases {
		if err := Validate(c.name); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%q) = %v, want error containing %q", c.name, err, c.want)
		}
	}
	if err := Validate("rowpress"); !errors.Is(err, ErrUnknownAttack) {
		t.Errorf("err = %v, want ErrUnknownAttack", err)
	}
}

// Canonical collapses spelling variants of one pattern, so axes can
// dedupe on it.
func TestCanonical(t *testing.T) {
	cases := []struct{ name, want string }{
		{"single", "single"},
		{"double", "double"},
		{"multi:8", "multi:8"},
		{"multi:08", "multi:8"},
		{"decoy", "decoy:4"},
		{"decoy:4", "decoy:4"},
		{"decoy:08", "decoy:8"},
		{"blockhammer-adversarial", "blockhammer-adversarial"},
	}
	for _, c := range cases {
		got, err := Canonical(c.name)
		if err != nil || got != c.want {
			t.Errorf("Canonical(%q) = %q, %v; want %q", c.name, got, err, c.want)
		}
	}
	if _, err := Canonical("rowpress"); !errors.Is(err, ErrUnknownAttack) {
		t.Errorf("Canonical(rowpress) err = %v, want ErrUnknownAttack", err)
	}
}

func TestNeedsOracle(t *testing.T) {
	if !NeedsOracle("blockhammer-adversarial") {
		t.Error("blockhammer-adversarial must declare NeedsOracle")
	}
	for _, name := range []string{"single", "double", "multi:8", "decoy", "rowlist", "no-such-pattern"} {
		if NeedsOracle(name) {
			t.Errorf("NeedsOracle(%q) = true", name)
		}
	}
}

func TestNeedsRows(t *testing.T) {
	if !NeedsRows("rowlist") {
		t.Error("rowlist must declare NeedsRows")
	}
	for _, name := range []string{"single", "double", "multi:8", "decoy", "blockhammer-adversarial", "no-such-pattern"} {
		if NeedsRows(name) {
			t.Errorf("NeedsRows(%q) = true", name)
		}
	}
}

// Build resolves each pattern to the same generator the typed
// constructors produce — names, aggressor rows, paper defaults.
func TestBuildPatterns(t *testing.T) {
	m := mapper()
	cases := []struct {
		name    string
		params  Params
		genName string
		rows    []int // expected distinct aggressor rows (unordered)
	}{
		{"single", Params{Mapper: m}, "single-sided", []int{1000}},
		{"double", Params{Mapper: m}, "double-sided", []int{999, 1001}},
		{"double", Params{Mapper: m, Row: 4000}, "double-sided", []int{3999, 4001}},
		{"multi:4", Params{Mapper: m}, "multi-sided-4", []int{2000, 2002, 2004, 2006, 2008}},
		{"rowlist", Params{Mapper: m, Rows: []int{7, 11}}, "rowlist", []int{7, 11}},
		{"decoy:2", Params{Mapper: m}, "decoy-2", []int{2999, 3001, 3096, 3104}},
		{"blockhammer-adversarial", Params{Mapper: m, Oracle: fakeThrottler{rows: []uint32{70, 71}}},
			"bh-adversarial", []int{70, 71}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gen, err := Build(c.name, c.params)
			if err != nil {
				t.Fatal(err)
			}
			if gen.Name() != c.genName {
				t.Errorf("generator name = %q, want %q", gen.Name(), c.genName)
			}
			seen := map[int]bool{}
			for i := 0; i < 64; i++ {
				seen[m.Map(gen.Next().Addr).Row] = true
			}
			for _, r := range c.rows {
				if !seen[r] {
					t.Errorf("row %d never hammered (saw %v)", r, seen)
				}
			}
			if len(seen) != len(c.rows) {
				t.Errorf("hammered %d distinct rows %v, want %d", len(seen), seen, len(c.rows))
			}
		})
	}
}

// Registry builds must return errors, not panic, on bad coordinates —
// they are driven by spec/CLI input.
func TestBuildErrors(t *testing.T) {
	m := mapper()
	cases := []struct {
		name   string
		params Params
		want   string
	}{
		{"single", Params{Mapper: m, Row: 1 << 30}, "outside bank"},
		{"multi:40000", Params{Mapper: m}, "outside bank"},
		{"rowlist", Params{Mapper: m}, "non-empty"},
		{"rowlist", Params{Mapper: m, Rows: []int{-2}}, "outside bank"},
		{"single", Params{}, "Mapper is required"},
		{"rowpress", Params{Mapper: m}, "unknown attack"},
	}
	for _, c := range cases {
		t.Run(c.name+"/"+c.want, func(t *testing.T) {
			if _, err := Build(c.name, c.params); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Build(%q, %+v) err = %v, want %q", c.name, c.params, err, c.want)
			}
		})
	}
}

// The decoy pattern must activate every decoy row twice per aggressor
// visit, so a sampling mitigation sees decoys as the hottest rows.
func TestDecoyRatioAndPlacement(t *testing.T) {
	m := mapper()
	gen, err := Build("decoy", Params{Mapper: m})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	cycle := 2 * (defaultDecoys + 1) // seq length for the default build
	for i := 0; i < 3*cycle; i++ {
		counts[m.Map(gen.Next().Addr).Row]++
	}
	for _, aggressor := range []int{2999, 3001} {
		if counts[aggressor] != 3 {
			t.Errorf("aggressor %d activated %d times, want 3", aggressor, counts[aggressor])
		}
	}
	for i := 0; i < defaultDecoys; i++ {
		d := 3000 + 96 + 8*i
		if counts[d] != 6 {
			t.Errorf("decoy %d activated %d times, want 6 (twice the aggressor rate)", d, counts[d])
		}
		if d >= 2996 && d <= 3004 {
			t.Errorf("decoy %d inside the victim's blast neighbourhood", d)
		}
	}
}
