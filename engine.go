package mithril

import (
	"context"
	"iter"

	"mithril/internal/distrib"
	"mithril/internal/expspec"
	"mithril/internal/sim"
	"mithril/internal/sweep"
)

// ProgressFunc observes sweep progress: done output rows completed out of
// total. The Engine serializes calls, so implementations need no locking;
// they must not block for long — they run on the sweep's critical path.
type ProgressFunc func(done, total int)

// ExperimentResultRow is one completed output row of a streaming spec
// execution: Engine.Stream yields these as workers finish grid points, in
// completion order (Row.Index recovers the deterministic grid order).
// Render one as machine-readable values with ExperimentSpec.RowValues.
type ExperimentResultRow = expspec.Row

// Engine is the context-aware entry point to the simulator: construct one
// from the DRAM parameter set plus options, then drive simulations,
// comparisons, and declarative experiment specs through it. Every method
// takes a context.Context and honours cancellation cooperatively — a
// cancelled sweep stops claiming grid points and aborts in-flight
// simulations mid-run.
//
//	eng := mithril.NewEngine(mithril.DDR5(),
//	    mithril.WithJobs(8),
//	    mithril.WithProgress(func(done, total int) { log.Printf("%d/%d", done, total) }),
//	)
//	res, err := eng.RunSpec(ctx, spec)
//
// An Engine is immutable after construction and safe for concurrent use;
// a zero-cost default instance backs the deprecated package-level
// functions (Run, Compare) for compatibility.
type Engine struct {
	params    TimingParams
	jobs      int // 0: leave the scale's worker count alone
	progress  ProgressFunc
	baselines *expspec.BaselineCache
	store     ResultStore
	coord     *distrib.Coordinator
	coordErr  error
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithJobs fixes the sweep worker count for every spec the Engine runs,
// overriding the Scale.Jobs of the specs' resolved scales (n <= 0 means
// one worker per core, mirroring Scale.Jobs).
func WithJobs(n int) EngineOption {
	return func(e *Engine) {
		e.jobs = n
		if n <= 0 {
			e.jobs = sweep.DefaultJobs()
		}
	}
}

// WithProgress installs a progress hook invoked after each output row of a
// spec execution completes.
func WithProgress(fn ProgressFunc) EngineOption {
	return func(e *Engine) { e.progress = fn }
}

// WithBaselineCache gives the Engine a persistent unprotected-baseline
// cache shared across every RunSpec/Stream call: a service running many
// overlapping scenarios simulates each distinct baseline once, not once
// per request. Entries are keyed by everything that determines a baseline
// run (scale geometry, seed, FlipTH, workload), so sharing is always
// sound; without this option each execution uses a private cache.
func WithBaselineCache() EngineOption {
	return func(e *Engine) { e.baselines = expspec.NewBaselineCache() }
}

// WithResultStore attaches a content-addressed result store shared by
// every RunSpec/Stream call: each grid row is looked up before it
// simulates and written back when a worker completes it, so a row is
// simulated at most once across executions — and, with a disk store
// (OpenResultStore), across process lifetimes. Keys cover everything
// that determines a row (cell values, timing parameters, scale geometry,
// schema/registry stamp), so sharing is always sound and output stays
// byte-identical with or without the store. ExperimentResult's
// RowsCached/RowsSimulated report the split.
func WithResultStore(st ResultStore) EngineOption {
	return func(e *Engine) { e.store = st }
}

// WithWorkers fans every spec execution out across mithrilsim serve
// worker peers (base URLs, e.g. "http://host:8377"): the grid is
// partitioned into shards, shards stream back over POST /v1/run, failed
// or disconnected shards are re-dispatched against surviving workers,
// and rows merge back in deterministic grid order — RunSpec output is
// byte-identical to a local run. Composes with WithResultStore (the
// coordinator consults the store before dispatching and writes worker
// rows back, so a retried row is never simulated twice) and WithJobs
// (applied to rows the coordinator must run locally, i.e. trace-file
// workloads that cannot travel). An empty or malformed worker list
// surfaces as an error from the first RunSpec/Stream call.
func WithWorkers(workers []string) EngineOption {
	return func(e *Engine) {
		e.coord, e.coordErr = distrib.New(workers, distrib.Options{})
	}
}

// NewEngine builds an Engine for the DRAM parameter set p (the default
// Params for Run/Compare configs that leave theirs zero).
func NewEngine(p TimingParams, opts ...EngineOption) *Engine {
	e := &Engine{params: p}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// execOptions binds the Engine's hooks for one spec execution.
func (e *Engine) execOptions() *expspec.ExecOptions {
	return &expspec.ExecOptions{Progress: e.progress, Baselines: e.baselines, Store: e.store}
}

// scaleFor resolves a spec's scale with the Engine's worker count applied.
func (e *Engine) scaleFor(sp *ExperimentSpec) (Scale, error) {
	sc, err := sp.Scale.Resolve()
	if err != nil {
		return Scale{}, err
	}
	return e.applyJobs(sc), nil
}

func (e *Engine) applyJobs(sc Scale) Scale {
	if e.jobs != 0 {
		sc.Jobs = e.jobs
	}
	return sc
}

// Run executes one simulation under ctx. A zero cfg.Params inherits the
// Engine's parameter set.
func (e *Engine) Run(ctx context.Context, cfg SimConfig) (SimResult, error) {
	if cfg.Params == (TimingParams{}) {
		cfg.Params = e.params
	}
	return sim.RunContext(ctx, cfg)
}

// Compare runs a workload unprotected and protected under ctx and reports
// normalized performance and energy. A zero cfg.Params inherits the
// Engine's parameter set.
func (e *Engine) Compare(ctx context.Context, cfg SimConfig, w Workload, s Scheme) (Comparison, error) {
	if cfg.Params == (TimingParams{}) {
		cfg.Params = e.params
	}
	return sim.RunComparisonContext(ctx, cfg, w, s)
}

// RunSpec executes a declarative experiment spec at the spec's own scale
// (with the Engine's worker count applied) and returns the complete result
// in deterministic grid order.
func (e *Engine) RunSpec(ctx context.Context, sp *ExperimentSpec) (*ExperimentResult, error) {
	sc, err := e.scaleFor(sp)
	if err != nil {
		return nil, err
	}
	return e.RunSpecAt(ctx, sp, sc)
}

// RunSpecAt is RunSpec at an explicit scale (the CLI's figure commands
// pass their quick/full scale over the spec's own).
func (e *Engine) RunSpecAt(ctx context.Context, sp *ExperimentSpec, sc Scale) (*ExperimentResult, error) {
	if e.coordErr != nil {
		return nil, e.coordErr
	}
	if e.coord != nil {
		return e.coord.RunAt(ctx, sp, e.applyJobs(sc), e.execOptions())
	}
	return sp.RunAtContext(ctx, e.applyJobs(sc), e.execOptions())
}

// Stream executes a spec at its own scale and yields each output row as
// workers finish it — completion order, not grid order. The sequence
// terminates with a single non-nil error when a grid point fails or ctx is
// cancelled; breaking out of the range cancels the remaining grid, and all
// workers have exited by the time the range ends. This is the entry point
// for long-running consumers (the serve endpoint's NDJSON responses) that
// must surface results before the sweep completes.
func (e *Engine) Stream(ctx context.Context, sp *ExperimentSpec) iter.Seq2[ExperimentResultRow, error] {
	sc, err := e.scaleFor(sp)
	if err != nil {
		return func(yield func(ExperimentResultRow, error) bool) { yield(ExperimentResultRow{}, err) }
	}
	return e.StreamAt(ctx, sp, sc)
}

// StreamAt is Stream at an explicit scale.
func (e *Engine) StreamAt(ctx context.Context, sp *ExperimentSpec, sc Scale) iter.Seq2[ExperimentResultRow, error] {
	if e.coordErr != nil {
		err := e.coordErr
		return func(yield func(ExperimentResultRow, error) bool) { yield(ExperimentResultRow{}, err) }
	}
	if e.coord != nil {
		return e.coord.StreamAt(ctx, sp, e.applyJobs(sc), e.execOptions())
	}
	return sp.StreamAt(ctx, e.applyJobs(sc), e.execOptions())
}

// RunParallelContext executes fn(ctx, 0..n-1) on up to jobs workers (0 =
// all cores) and returns the results in index order. The first cell error
// (or a ctx cancellation) cancels the context handed to the remaining
// cells, so long-running cells can abort cooperatively. Downstream studies
// fan their own simulation grids out on this (see
// examples/scheduler_study).
func RunParallelContext[T any](ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return sweep.RunContext(ctx, jobs, n, fn)
}

// defaultEngine backs the deprecated package-level entry points.
var defaultEngine = NewEngine(DDR5())
