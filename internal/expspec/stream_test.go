package expspec

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// streamScale resolves tiny()'s scale with a worker pool.
func streamScale(t *testing.T, jobs int) Scale {
	t.Helper()
	sc, err := tiny().Scale.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sc.Jobs = jobs
	return sc
}

// TestStreamMatchesBatch pins the core streaming guarantee: reassembling a
// stream's rows by Index reproduces the batch result exactly.
func TestStreamMatchesBatch(t *testing.T) {
	s := tiny()
	sc := streamScale(t, 4)
	batch, err := s.RunAtContext(context.Background(), sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]PerfPoint, len(batch.Perf))
	seen := 0
	for row, err := range s.StreamAt(context.Background(), sc, nil) {
		if err != nil {
			t.Fatal(err)
		}
		if row.Perf == nil {
			t.Fatalf("row %d has no perf point", row.Index)
		}
		got[row.Index] = *row.Perf
		seen++
	}
	if seen != len(batch.Perf) {
		t.Fatalf("streamed %d rows, batch has %d", seen, len(batch.Perf))
	}
	if !reflect.DeepEqual(got, batch.Perf) {
		t.Errorf("stream != batch:\nstream: %v\nbatch:  %v", got, batch.Perf)
	}
}

func TestStreamInvalidSpecYieldsError(t *testing.T) {
	s := tiny()
	s.Axes.Schemes = []string{"bogus"}
	sc := streamScale(t, 1)
	var sawErr error
	rows := 0
	for _, err := range s.StreamAt(context.Background(), sc, nil) {
		if err != nil {
			sawErr = err
			continue
		}
		rows++
	}
	if sawErr == nil || rows != 0 {
		t.Fatalf("err=%v rows=%d, want validation error and no rows", sawErr, rows)
	}
}

func TestStreamCancelMidSweep(t *testing.T) {
	s := tiny()
	s.Axes.Seeds = []uint64{1, 2, 3, 4, 5, 6} // 12 rows
	sc := streamScale(t, 2)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows := 0
	var sawErr error
	for _, err := range s.StreamAt(ctx, sc, nil) {
		if err != nil {
			sawErr = err
			continue
		}
		rows++
		if rows == 2 {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", sawErr)
	}
	if rows >= 12 {
		t.Fatal("full grid delivered despite cancellation")
	}
	// All sweep workers must have exited by the time the range ends.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("leaked goroutines: %d > %d", g, baseline)
	}
}

func TestRunAtContextCancelled(t *testing.T) {
	s := tiny()
	sc := streamScale(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunAtContext(ctx, sc, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProgressHook(t *testing.T) {
	s := tiny()
	sc := streamScale(t, 4)
	var calls []int
	var lastTotal int
	res, err := s.RunAtContext(context.Background(), sc, &ExecOptions{
		Progress: func(done, total int) { calls = append(calls, done); lastTotal = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(res.Perf) || lastTotal != len(res.Perf) {
		t.Fatalf("progress calls %v (total %d), want %d monotonic calls", calls, lastTotal, len(res.Perf))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not monotonic", calls)
		}
	}
}

// TestSharedBaselineCache pins the WithBaselineCache contract: a second
// execution of the same spec against a shared cache adds no new baseline
// entries, and results are identical to a cold run.
func TestSharedBaselineCache(t *testing.T) {
	s := tiny()
	sc := streamScale(t, 2)
	cache := NewBaselineCache()
	opts := &ExecOptions{Baselines: cache}
	a, err := s.RunAtContext(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := cache.Len()
	if warm == 0 {
		t.Fatal("no baselines cached")
	}
	b, err := s.RunAtContext(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != warm {
		t.Fatalf("second run grew the cache: %d -> %d", warm, cache.Len())
	}
	if !reflect.DeepEqual(a.Perf, b.Perf) {
		t.Errorf("warm-cache run diverges: %v vs %v", a.Perf, b.Perf)
	}
}

func TestRowValues(t *testing.T) {
	s := tiny()
	sc := streamScale(t, 1)
	for row, err := range s.StreamAt(context.Background(), sc, nil) {
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.RowValues(sc, row)
		if err != nil {
			t.Fatal(err)
		}
		// Default comparison columns, with the row's own values bound.
		for _, col := range []string{"scheme", "flipth", "workload", "perf", "energy", "tablekb", "safe"} {
			if _, ok := m[col]; !ok {
				t.Fatalf("RowValues missing %q: %v", col, m)
			}
		}
		if m["scheme"] != row.Perf.Scheme {
			t.Fatalf("scheme = %v, want %v", m["scheme"], row.Perf.Scheme)
		}
	}
	// A row whose point is missing must error, not panic.
	if _, err := s.RowValues(sc, Row{}); err == nil {
		t.Fatal("empty row should error")
	}
}
