package trace

import "fmt"

func init() {
	RegisterWorkload("pagerank",
		"GAP PageRank-like multithreaded kernel: sequential edge sweeps with random vertex gathers over a shared graph",
		PageRank)
}

// PageRank is the GAP PageRank-like kernel: sequential edge sweeps with
// random vertex gathers over a shared graph.
func PageRank(threads int, seed uint64) Workload {
	return Workload{
		Name: "pagerank",
		Fresh: func() []Generator {
			gens := make([]Generator, threads)
			for i := 0; i < threads; i++ {
				// Shared graph: all threads over the same region.
				gens[i] = NewGatherScatter(fmt.Sprintf("pr-%d", i), 0, 768<<20, 14, seed+uint64(i)*7919)
			}
			return gens
		},
	}
}
